// Command orient runs a self-stabilizing network orientation protocol
// on a chosen graph until it stabilizes, then prints the node names
// and chordal edge labels (or Graphviz DOT).
//
// Usage:
//
//	orient -graph ring:8 -proto dftno
//	orient -graph torus:4x4 -proto stno -format dot
//	orient -graph random:20:10:1 -proto dftno -randomize -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/sod"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "orient:", err)
		os.Exit(1)
	}
}

type orienter interface {
	program.Protocol
	program.Legitimacy
	program.Randomizer
	Labeling() *sod.Labeling
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("orient", flag.ContinueOnError)
	var (
		spec      = fs.String("graph", "ring:8", "graph spec (see internal/graph.Named)")
		proto     = fs.String("proto", "dftno", "protocol: dftno | stno")
		root      = fs.Int("root", 0, "root processor id")
		modulus   = fs.Int("modulus", 0, "N, the agreed size bound (0 = exactly n)")
		seed      = fs.Int64("seed", 1, "random seed")
		randomize = fs.Bool("randomize", false, "start from an arbitrary configuration")
		format    = fs.String("format", "table", "output: table | dot | names")
		maxSteps  = fs.Int64("max-steps", 0, "step budget (0 = auto)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := graph.Named(*spec)
	if err != nil {
		return err
	}
	r := graph.NodeID(*root)

	var o orienter
	switch *proto {
	case "dftno":
		sub, err := token.NewCirculator(g, r)
		if err != nil {
			return err
		}
		if o, err = core.NewDFTNO(g, sub, *modulus); err != nil {
			return err
		}
	case "stno":
		sub, err := spantree.NewBFSTree(g, r)
		if err != nil {
			return err
		}
		if o, err = core.NewSTNO(g, sub, *modulus); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown protocol %q (want dftno or stno)", *proto)
	}

	if *randomize {
		o.Randomize(rand.New(rand.NewSource(*seed)))
	}
	budget := *maxSteps
	if budget == 0 {
		budget = int64(20000 * (g.N() + g.M()))
	}
	sys := program.NewSystem(o, daemon.NewCentral(*seed))
	res, err := sys.RunUntilLegitimate(budget)
	if err != nil {
		return err
	}
	if !res.Converged {
		return fmt.Errorf("no stabilization within %d steps", budget)
	}

	l := o.Labeling()
	if err := l.Validate(g); err != nil {
		return fmt.Errorf("stabilized but labeling invalid: %w", err)
	}

	switch *format {
	case "names":
		for v, name := range l.Names {
			fmt.Fprintf(out, "%d %d\n", v, name)
		}
	case "dot":
		return graph.WriteDOT(out, g, graph.DOTOptions{
			Name:      strings.ReplaceAll(*spec, ":", "_"),
			NodeLabel: func(v graph.NodeID) string { return fmt.Sprintf("%d (η=%d)", v, l.Names[v]) },
			EdgeLabel: func(u, v graph.NodeID) string {
				pu, _ := g.PortOf(u, v)
				pv, _ := g.PortOf(v, u)
				return fmt.Sprintf("%d/%d", l.Labels[u][pu], l.Labels[v][pv])
			},
		})
	case "table":
		fmt.Fprintf(out, "# %s oriented %s with %s in %d moves (%d rounds); N=%d\n",
			*proto, g, sys.Protocol().Name(), res.Moves, res.Rounds, l.Modulus)
		for v := 0; v < g.N(); v++ {
			var cells []string
			for port, q := range g.Neighbors(graph.NodeID(v)) {
				cells = append(cells, fmt.Sprintf("→%d:%d", q, l.Labels[v][port]))
			}
			fmt.Fprintf(out, "node %-4d η=%-4d %s\n", v, l.Names[v], strings.Join(cells, " "))
		}
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

// Command stabsim runs stabilization campaigns: repeated convergence
// measurements from arbitrary configurations, transient-fault
// recovery, and topology-churn recovery, for any protocol stack in
// the library.
//
// Usage:
//
//	stabsim -graph grid:4x4 -proto dftno -daemon central -trials 20
//	stabsim -graph ring:12 -proto stno -faults 3 -trials 30
//	stabsim -graph clique:6 -proto token -daemon distributed
//	stabsim -graph grid:8x8 -proto dftno -churn 10 -churn-kind mixed
//	stabsim -graph lollipop:8:6 -proto token -churn 8 -churn-kind partition -allow-disconnect
//	stabsim -graph lollipop:8:6 -proto dftno -soak 10 -leave-split 1
//
// With -allow-disconnect churn events may split the graph: legitimacy
// is then judged per component (the root's component by the classic
// predicate, orphan components by quiescence), the down phase measures
// per-component convergence while split, and heals merge components
// back. Without it every event preserves connectivity, as in the
// paper's model.
//
// -failover wraps the stack in the root-failover layer
// (internal/failover): nodes detect disconnection from local
// variables, orphan components elect and re-anchor at acting roots,
// and heals abdicate them. -soak N implies -failover and runs the
// long-lived multi-partition soak (internal/churn.Soak): N mutation
// phases of overlapping splits, partial heals and root crash/revive,
// with per-phase detection-latency measurement and invariant checks —
// any violation exits non-zero.
//
// stabsim exits non-zero whenever a campaign exhausts its step budget
// without reaching legitimacy — a partially recovered fault or churn
// campaign is a failure, not a statistic to misread as success.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"netorient/internal/churn"
	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/failover"
	"netorient/internal/fault"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
	"netorient/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stabsim:", err)
		os.Exit(1)
	}
}

// target is what a campaign needs.
type target interface {
	program.Protocol
	program.Legitimacy
	program.Randomizer
	program.NodeCorruptor
}

func buildProtocol(name string, g *graph.Graph, root graph.NodeID) (target, error) {
	switch name {
	case "dftno":
		sub, err := token.NewCirculator(g, root)
		if err != nil {
			return nil, err
		}
		return core.NewDFTNO(g, sub, 0)
	case "stno":
		sub, err := spantree.NewBFSTree(g, root)
		if err != nil {
			return nil, err
		}
		return core.NewSTNO(g, sub, 0)
	case "token":
		return token.NewCirculator(g, root)
	case "bfstree":
		return spantree.NewBFSTree(g, root)
	case "dfstree":
		return spantree.NewDFSTree(g, root)
	}
	return nil, fmt.Errorf("unknown protocol %q (dftno|stno|token|bfstree|dfstree)", name)
}

// renderFailoverReport prints the per-component failover columns:
// elected leader, acting root, cumulative leader flaps, nodes still
// lagging behind detection truth, and (when supplied by a soak phase)
// the component's detection latency.
func renderFailoverReport(g *graph.Graph, fp *failover.Protocol, detect map[int]int64, title string) error {
	rep, err := churn.FailoverReport(g, 0, fp, detect)
	if err != nil {
		return err
	}
	tb := trace.NewTable(title,
		"component", "size", "has root", "leader", "acting root", "leader flaps", "lagging", "detect steps")
	for _, c := range rep {
		tb.AddRow(c.Label, c.Size, c.HasRoot, c.Leader, c.ActingRoot, c.Flaps, c.Lagging, c.DetectSteps)
	}
	return tb.Render(os.Stdout)
}

func daemonFactory(name string, seed int64) (func(int) program.Daemon, error) {
	switch name {
	case "central":
		return func(t int) program.Daemon { return daemon.NewCentral(seed + int64(t)) }, nil
	case "distributed":
		return func(t int) program.Daemon { return daemon.NewDistributed(seed+int64(t), 0.5) }, nil
	case "synchronous":
		return func(t int) program.Daemon { return daemon.NewSynchronous(seed + int64(t)) }, nil
	case "round-robin":
		return func(int) program.Daemon { return daemon.NewRoundRobin() }, nil
	}
	return nil, fmt.Errorf("unknown daemon %q (central|distributed|synchronous|round-robin)", name)
}

func run(args []string) error {
	fs := flag.NewFlagSet("stabsim", flag.ContinueOnError)
	var (
		spec       = fs.String("graph", "grid:4x4", "graph spec (see internal/graph.Named)")
		proto      = fs.String("proto", "dftno", "protocol: dftno|stno|token|bfstree|dfstree")
		dmn        = fs.String("daemon", "central", "daemon: central|distributed|synchronous|round-robin")
		trials     = fs.Int("trials", 20, "number of trials")
		faults     = fs.Int("faults", 0, "if >0, run a fault campaign corrupting this many nodes per trial")
		seed       = fs.Int64("seed", 1, "random seed")
		budgetFlag = fs.Int64("budget", 0, "step budget per recovery (0 = 50000·(n+m))")
		churnN     = fs.Int("churn", 0, "if >0, run a churn campaign with this many topology events")
		churnKind  = fs.String("churn-kind", "mixed", "churn events: flap|crash|partition|bridge|island|mixed")
		churnPer   = fs.Int64("churn-period", 2000, "steps between churn events (recovery window)")
		churnDown  = fs.Int64("churn-down", 200, "steps a removed element stays down")
		allowDis   = fs.Bool("allow-disconnect", false, "lift connectivity preservation: events may split the graph; legitimacy is per component")
		failoverOn = fs.Bool("failover", false, "wrap the stack in the root-failover/disconnection-detection layer")
		soakN      = fs.Int("soak", 0, "if >0, run the multi-partition soak with this many mutation phases (implies -failover)")
		soakWall   = fs.Duration("soak-wall", 0, "wall-clock budget for the soak (0 = unbounded)")
		leaveSplit = fs.Int("leave-split", 0, "soak: number of cuts never healed — components that never reunite")
		corruptPr  = fs.Float64("corrupt-rate", 0, "soak: per-phase probability of a transient state fault on top of the topology mutation")
		workersN   = fs.Int("workers", 1, "campaign engine: 1 = serial under -daemon; 0 = sharded parallel stepper with GOMAXPROCS workers; N>1 = parallel with N workers (applies to plain, churn, soak and fault campaigns)")
		wavesOn    = fs.Bool("frontier-waves", false, "parallel stepper: batched concurrent wave execution of the boundary pass (distance-2R coloring)")
		reshardIm  = fs.Float64("reshard-imbalance", 0, "parallel stepper: arm work-driven resharding at this max/mean per-shard work ratio (≤1 = off)")
		reshardIv  = fs.Int64("reshard-interval", 0, "parallel stepper: minimum steps between automatic reshards (0 = policy default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	effWorkers := *workersN
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	reshard := program.ReshardPolicy{Imbalance: *reshardIm, MinInterval: *reshardIv}

	g, err := graph.Named(*spec)
	if err != nil {
		return err
	}
	p, err := buildProtocol(*proto, g, 0)
	if err != nil {
		return err
	}
	var fp *failover.Protocol
	if *failoverOn || *soakN > 0 {
		in, ok := p.(failover.Inner)
		if !ok {
			return fmt.Errorf("protocol %q cannot take the failover wrapper", *proto)
		}
		fp = failover.New(g, in, 0)
		p = fp
	}
	mkDaemon, err := daemonFactory(*dmn, *seed)
	if err != nil {
		return err
	}
	budget := *budgetFlag
	if budget <= 0 {
		budget = int64(50000 * (g.N() + g.M()))
	}
	// newEngine picks the campaign's execution engine from -workers:
	// the serial incremental scheduler under -daemon, or the sharded
	// parallel stepper (its own maximal distributed daemon).
	newEngine := func(seed int64) program.Stepper {
		if effWorkers == 1 {
			return program.NewSystem(p, mkDaemon(0))
		}
		return program.NewParallelSystem(p, program.ParallelConfig{
			Workers: effWorkers, Seed: seed,
			FrontierWaves: *wavesOn, Reshard: reshard,
		})
	}

	if *soakN > 0 {
		run := &churn.Runner{G: g, Sys: newEngine(*seed), Root: 0}
		st, err := run.Soak(fp, churn.SoakConfig{
			Seed:        *seed,
			Phases:      *soakN,
			StepBudget:  budget,
			WallBudget:  *soakWall,
			LeaveSplit:  *leaveSplit,
			CorruptRate: *corruptPr,
		})
		if err != nil {
			return err
		}
		tb := trace.NewTable(
			fmt.Sprintf("soak: %s (failover) on %s, %d phases, leave-split=%d, daemon=%s",
				*proto, g, *soakN, *leaveSplit, *dmn),
			"phase", "op", "components", "detect steps", "settle steps", "settle moves",
			"acting roots", "leader flaps")
		for _, ph := range st.Phases {
			tb.AddRow(ph.Index, ph.Op, ph.Components, ph.DetectSteps, ph.SettleSteps,
				ph.SettleMoves, ph.ActingRoots, ph.LeaderFlaps)
		}
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		var detect map[int]int64
		if len(st.Phases) > 0 {
			detect = st.Phases[len(st.Phases)-1].Detect
		}
		if err := renderFailoverReport(g, fp, detect,
			fmt.Sprintf("soak end state: %d components, %d steps, %d deltas, elapsed %s",
				st.FinalComponents, st.TotalSteps, st.Deltas, st.Elapsed.Round(1000000))); err != nil {
			return err
		}
		if st.Truncated {
			fmt.Println("soak: wall budget expired before all mutation phases ran")
		}
		if !st.Ok() {
			for _, v := range st.Violations {
				fmt.Fprintln(os.Stderr, "soak violation:", v)
			}
			return fmt.Errorf("soak saw %d invariant violations", len(st.Violations))
		}
		return nil
	}

	if *churnN > 0 {
		var mix []churn.Kind
		switch *churnKind {
		case "flap":
			mix = []churn.Kind{churn.EdgeFlap}
		case "crash":
			mix = []churn.Kind{churn.NodeCrash}
		case "partition":
			mix = []churn.Kind{churn.Partition}
		case "bridge":
			mix = []churn.Kind{churn.BridgeCut}
		case "island":
			mix = []churn.Kind{churn.IslandCrash}
		case "mixed":
			mix = []churn.Kind{churn.EdgeFlap, churn.NodeCrash, churn.Partition}
			if *allowDis {
				mix = append(mix, churn.BridgeCut, churn.IslandCrash)
			}
		default:
			return fmt.Errorf("unknown churn kind %q (flap|crash|partition|bridge|island|mixed)", *churnKind)
		}
		if (*churnKind == "bridge" || *churnKind == "island") && !*allowDis {
			return fmt.Errorf("churn kind %q splits the graph; it needs -allow-disconnect", *churnKind)
		}
		run := &churn.Runner{G: g, Sys: newEngine(*seed), Root: 0}
		st, err := run.Run(churn.Config{
			Seed:            *seed,
			Events:          *churnN,
			Period:          *churnPer,
			DownFor:         *churnDown,
			Mix:             mix,
			MaxSteps:        budget,
			AllowDisconnect: *allowDis,
		})
		if err != nil {
			return err
		}
		ss := trace.SummarizeInts(st.RecoverySteps)
		ms := trace.SummarizeInts(st.RecoveryMoves)
		rs := trace.SummarizeInts(st.RecoveryRounds)
		final := fmt.Sprintf("converged (moves=%d rounds=%d)", st.Final.Moves, st.Final.Rounds)
		if !st.Final.Converged {
			final = "NOT CONVERGED"
		}
		title := fmt.Sprintf("churn recovery: %s on %s, %d %s events, period=%d, daemon=%s",
			*proto, g, st.Events, *churnKind, *churnPer, *dmn)
		var tb *trace.Table
		if *allowDis {
			// Split telemetry: how often the schedule actually
			// disconnected the graph, and whether the split system
			// reached per-component legitimacy within the down phase.
			splits := 0
			for _, c := range st.SplitComponents {
				if c >= 2 {
					splits++
				}
			}
			sp := trace.SummarizeInts(st.SplitSteps)
			tb = trace.NewTable(title,
				"recovered in period", "skipped", "deltas", "splits",
				"split converged", "median split steps", "median steps", "final recovery")
			tb.AddRow(fmt.Sprintf("%d/%d", st.RecoveredInPeriod, st.Events), st.SkippedEvents,
				st.Deltas, splits, st.SplitConverged, sp.Median, ss.Median, final)
		} else {
			tb = trace.NewTable(title,
				"recovered in period", "deltas", "median steps", "median moves", "median rounds", "max rounds",
				"final recovery")
			tb.AddRow(fmt.Sprintf("%d/%d", st.RecoveredInPeriod, st.Events), st.Deltas,
				ss.Median, ms.Median, rs.Median, rs.Max, final)
		}
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		if fp != nil && *allowDis {
			// Split telemetry, failover view: per-component acting
			// roots and the leader-flap totals the whole campaign
			// accumulated. Detection latency comes from soak phases
			// (-soak), so it is unknown (−1) here.
			if err := renderFailoverReport(g, fp, nil, "failover split telemetry (post-campaign)"); err != nil {
				return err
			}
		}
		if !st.Final.Converged {
			return fmt.Errorf("churn campaign exhausted %d steps without final legitimacy", budget)
		}
		return nil
	}

	if *faults > 0 {
		campaignWorkers := 0
		if effWorkers > 1 {
			campaignWorkers = effWorkers
		}
		out, err := fault.Campaign{
			Faults:    *faults,
			Trials:    *trials,
			MaxSteps:  budget,
			Seed:      *seed,
			NewDaemon: mkDaemon,
			Workers:   campaignWorkers,
		}.Run(p)
		if err != nil {
			return err
		}
		ms := trace.SummarizeInts(out.RecoveryMoves)
		rs := trace.SummarizeInts(out.RecoveryRounds)
		tb := trace.NewTable(
			fmt.Sprintf("fault recovery: %s on %s, %d faults/trial, daemon=%s", *proto, g, *faults, *dmn),
			"recovered", "median moves", "p95 moves", "max moves", "median rounds", "max rounds")
		tb.AddRow(fmt.Sprintf("%d/%d", out.Recovered, out.Trials), ms.Median, ms.P95, ms.Max, rs.Median, rs.Max)
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		if out.Recovered != out.Trials {
			return fmt.Errorf("%d of %d trials exhausted %d steps without legitimacy",
				out.Trials-out.Recovered, out.Trials, budget)
		}
		return nil
	}

	rng := rand.New(rand.NewSource(*seed))
	var steps, moves, rounds []int64
	for trial := 0; trial < *trials; trial++ {
		p.Randomize(rng)
		var res program.RunResult
		if *workersN == 1 {
			sys := program.NewSystem(p, mkDaemon(trial))
			res, err = sys.RunUntilLegitimate(budget)
		} else {
			// The sharded parallel stepper is its own maximal
			// distributed daemon; -daemon does not apply to it.
			ps := program.NewParallelSystem(p, program.ParallelConfig{
				Workers:       *workersN,
				Seed:          *seed + int64(trial),
				FrontierWaves: *wavesOn,
				Reshard:       reshard,
			})
			res, err = ps.RunUntilLegitimate(budget)
		}
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("trial %d: no convergence within %d steps (%d moves, %d rounds spent)",
				trial, budget, res.Moves, res.Rounds)
		}
		steps = append(steps, res.Steps)
		moves = append(moves, res.Moves)
		rounds = append(rounds, res.Rounds)
	}
	ss := trace.SummarizeInts(steps)
	ms := trace.SummarizeInts(moves)
	rs := trace.SummarizeInts(rounds)
	sched := fmt.Sprintf("daemon=%s", *dmn)
	if *workersN != 1 {
		w := *workersN
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		sched = fmt.Sprintf("parallel stepper, workers=%d", w)
	}
	tb := trace.NewTable(
		fmt.Sprintf("stabilization from arbitrary configurations: %s on %s, %s, %d trials", *proto, g, sched, *trials),
		"median steps", "median moves", "p95 moves", "max moves", "median rounds", "max rounds")
	tb.AddRow(ss.Median, ms.Median, ms.P95, ms.Max, rs.Median, rs.Max)
	return tb.Render(os.Stdout)
}

// Command stabsim runs stabilization campaigns: repeated convergence
// measurements from arbitrary configurations and transient-fault
// recovery, for any protocol stack in the library.
//
// Usage:
//
//	stabsim -graph grid:4x4 -proto dftno -daemon central -trials 20
//	stabsim -graph ring:12 -proto stno -faults 3 -trials 30
//	stabsim -graph clique:6 -proto token -daemon distributed
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/fault"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
	"netorient/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stabsim:", err)
		os.Exit(1)
	}
}

// target is what a campaign needs.
type target interface {
	program.Protocol
	program.Legitimacy
	program.Randomizer
	program.NodeCorruptor
}

func buildProtocol(name string, g *graph.Graph, root graph.NodeID) (target, error) {
	switch name {
	case "dftno":
		sub, err := token.NewCirculator(g, root)
		if err != nil {
			return nil, err
		}
		return core.NewDFTNO(g, sub, 0)
	case "stno":
		sub, err := spantree.NewBFSTree(g, root)
		if err != nil {
			return nil, err
		}
		return core.NewSTNO(g, sub, 0)
	case "token":
		return token.NewCirculator(g, root)
	case "bfstree":
		return spantree.NewBFSTree(g, root)
	case "dfstree":
		return spantree.NewDFSTree(g, root)
	}
	return nil, fmt.Errorf("unknown protocol %q (dftno|stno|token|bfstree|dfstree)", name)
}

func daemonFactory(name string, seed int64) (func(int) program.Daemon, error) {
	switch name {
	case "central":
		return func(t int) program.Daemon { return daemon.NewCentral(seed + int64(t)) }, nil
	case "distributed":
		return func(t int) program.Daemon { return daemon.NewDistributed(seed+int64(t), 0.5) }, nil
	case "synchronous":
		return func(t int) program.Daemon { return daemon.NewSynchronous(seed + int64(t)) }, nil
	case "round-robin":
		return func(int) program.Daemon { return daemon.NewRoundRobin() }, nil
	}
	return nil, fmt.Errorf("unknown daemon %q (central|distributed|synchronous|round-robin)", name)
}

func run(args []string) error {
	fs := flag.NewFlagSet("stabsim", flag.ContinueOnError)
	var (
		spec   = fs.String("graph", "grid:4x4", "graph spec (see internal/graph.Named)")
		proto  = fs.String("proto", "dftno", "protocol: dftno|stno|token|bfstree|dfstree")
		dmn    = fs.String("daemon", "central", "daemon: central|distributed|synchronous|round-robin")
		trials = fs.Int("trials", 20, "number of trials")
		faults = fs.Int("faults", 0, "if >0, run a fault campaign corrupting this many nodes per trial")
		seed   = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := graph.Named(*spec)
	if err != nil {
		return err
	}
	p, err := buildProtocol(*proto, g, 0)
	if err != nil {
		return err
	}
	mkDaemon, err := daemonFactory(*dmn, *seed)
	if err != nil {
		return err
	}
	budget := int64(50000 * (g.N() + g.M()))

	if *faults > 0 {
		out, err := fault.Campaign{
			Faults:    *faults,
			Trials:    *trials,
			MaxSteps:  budget,
			Seed:      *seed,
			NewDaemon: mkDaemon,
		}.Run(p)
		if err != nil {
			return err
		}
		ms := trace.SummarizeInts(out.RecoveryMoves)
		rs := trace.SummarizeInts(out.RecoveryRounds)
		tb := trace.NewTable(
			fmt.Sprintf("fault recovery: %s on %s, %d faults/trial, daemon=%s", *proto, g, *faults, *dmn),
			"recovered", "median moves", "p95 moves", "max moves", "median rounds")
		tb.AddRow(fmt.Sprintf("%d/%d", out.Recovered, out.Trials), ms.Median, ms.P95, ms.Max, rs.Median)
		return tb.Render(os.Stdout)
	}

	rng := rand.New(rand.NewSource(*seed))
	var moves, rounds []int64
	for trial := 0; trial < *trials; trial++ {
		p.Randomize(rng)
		sys := program.NewSystem(p, mkDaemon(trial))
		res, err := sys.RunUntilLegitimate(budget)
		if err != nil {
			return err
		}
		if !res.Converged {
			return fmt.Errorf("trial %d: no convergence within %d steps", trial, budget)
		}
		moves = append(moves, res.Moves)
		rounds = append(rounds, res.Rounds)
	}
	ms := trace.SummarizeInts(moves)
	rs := trace.SummarizeInts(rounds)
	tb := trace.NewTable(
		fmt.Sprintf("stabilization from arbitrary configurations: %s on %s, daemon=%s, %d trials", *proto, g, *dmn, *trials),
		"median moves", "p95 moves", "max moves", "median rounds", "max rounds")
	tb.AddRow(ms.Median, ms.P95, ms.Max, rs.Median, rs.Max)
	return tb.Render(os.Stdout)
}

// Command modelcheck verifies self-stabilization of any protocol in
// the library by exhaustive exploration: from a set of randomized
// configurations, the whole reachable configuration space is explored
// under the central daemon and checked for convergence (no
// illegitimate cycle or terminal configuration, under the chosen
// daemon-fairness assumption) and closure.
//
// Usage:
//
//	modelcheck -graph path:4 -proto token
//	modelcheck -graph clique:3 -proto dftno -fairness strong
//	modelcheck -graph star:4 -proto bfstree -seeds 500 -max-states 4000000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"netorient/internal/check"
	"netorient/internal/core"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelcheck:", err)
		os.Exit(1)
	}
}

// target is what the checker plus seed generation needs.
type target interface {
	check.Target
	program.Randomizer
}

func buildProtocol(name string, g *graph.Graph) (target, error) {
	switch name {
	case "token":
		return token.NewCirculator(g, 0)
	case "bfstree":
		return spantree.NewBFSTree(g, 0)
	case "dfstree":
		return spantree.NewDFSTree(g, 0)
	case "dftno":
		sub, err := token.NewCirculator(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewDFTNO(g, sub, 0)
	case "stno":
		sub, err := spantree.NewBFSTree(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewSTNO(g, sub, 0)
	case "stno-oracle":
		sub, err := spantree.NewBFSOracle(g, 0)
		if err != nil {
			return nil, err
		}
		return core.NewSTNO(g, sub, 0)
	}
	return nil, fmt.Errorf("unknown protocol %q (token|bfstree|dfstree|dftno|stno|stno-oracle)", name)
}

func run(args []string) error {
	fs := flag.NewFlagSet("modelcheck", flag.ContinueOnError)
	var (
		spec      = fs.String("graph", "path:3", "graph spec (keep it small: exhaustive exploration)")
		proto     = fs.String("proto", "token", "protocol: token|bfstree|dfstree|dftno|stno|stno-oracle")
		seeds     = fs.Int("seeds", 100, "number of randomized seed configurations")
		maxStates = fs.Int("max-states", 2_000_000, "state budget")
		fairness  = fs.String("fairness", "unfair", "daemon assumption: unfair|weak|strong")
		seed      = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := graph.Named(*spec)
	if err != nil {
		return err
	}
	p, err := buildProtocol(*proto, g)
	if err != nil {
		return err
	}
	var fair check.Fairness
	switch *fairness {
	case "unfair":
		fair = check.Unfair
	case "weak":
		fair = check.WeakFair
	case "strong":
		fair = check.StrongFair
	default:
		return fmt.Errorf("unknown fairness %q (unfair|weak|strong)", *fairness)
	}

	rng := rand.New(rand.NewSource(*seed))
	seedSnaps, err := check.RandomSeeds(p, *seeds, rng)
	if err != nil {
		return err
	}
	rep, err := check.Verify(p, check.Options{
		Seeds:     seedSnaps,
		MaxStates: *maxStates,
		Fairness:  fair,
	})
	if err != nil {
		fmt.Printf("VIOLATION for %s on %s under %s fairness:\n  %v\n", *proto, g, *fairness, err)
		fmt.Printf("explored %d states, %d transitions before the violation\n", rep.States, rep.Transitions)
		os.Exit(2)
	}
	fmt.Printf("OK: %s on %s is self-stabilizing under the %s criterion\n", *proto, g, *fairness)
	fmt.Printf("  states explored:      %d\n", rep.States)
	fmt.Printf("  legitimate states:    %d\n", rep.LegitStates)
	fmt.Printf("  transitions:          %d\n", rep.Transitions)
	fmt.Printf("  worst-case distance:  %d moves to legitimacy\n", rep.MaxStepsToLegit)
	return nil
}

// Command orientd runs the long-lived orientation service: a protocol
// stack wrapped in root failover, stabilizing continuously on the
// message-passing actor runtime (or, with -workers N, on the sharded
// parallel stepper), with a JSON-line admin socket for queries and
// fault injection. Under -workers, the metrics verb adds a "parallel"
// section: per-shard work, frontier size, wave count and the
// resharding/rebuild counters.
//
// Usage:
//
//	orientd -graph grid:6x6 -stack dftno -listen tcp:127.0.0.1:7600
//	orientd -graph gnp:24:0.2:7 -smoke
//	echo '{"op":"status"}' | nc 127.0.0.1 7600
//
// Query verbs: status, legitimacy, orientation, enabled, metrics.
// Fault verbs: corrupt {"node":n}, flap/cut/heal {"u":a,"v":b},
// crash-root, revive. Lifecycle: shutdown (graceful; orientd exits 0).
//
// -smoke runs the self-test: boot, converge, serve 8 parallel query
// clients off the witness counters while an edge flap and a node
// corruption land, confirm re-convergence and a sane metrics
// snapshot, shut down cleanly. Any invariant violation exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netorient/internal/actor"
	"netorient/internal/graph"
	"netorient/internal/orientd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "orientd:", err)
		os.Exit(1)
	}
}

// parsePins parses "5=10,7=3" into a pin map.
func parsePins(s string) (map[graph.NodeID]int64, error) {
	if s == "" {
		return nil, nil
	}
	pins := make(map[graph.NodeID]int64)
	for _, part := range strings.Split(s, ",") {
		node, prio, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("pin %q, want node=priority", part)
		}
		v, err := strconv.Atoi(node)
		if err != nil {
			return nil, fmt.Errorf("pin node %q: %w", node, err)
		}
		w, err := strconv.ParseInt(prio, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pin priority %q: %w", prio, err)
		}
		pins[graph.NodeID(v)] = w
	}
	return pins, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("orientd", flag.ContinueOnError)
	var (
		spec     = fs.String("graph", "grid:6x6", "graph spec (see internal/graph.Named)")
		stack    = fs.String("stack", "dftno", "protocol stack: dftno|stno|token|bfstree|dfstree")
		listen   = fs.String("listen", "tcp:127.0.0.1:0", "admin socket: unix:<path> or tcp:<host:port>")
		root     = fs.Int("root", 0, "fixed root processor")
		seed     = fs.Int64("seed", 1, "random seed for the runtime's RNG streams")
		drop     = fs.Float64("drop", 0, "per-message link drop probability (<1)")
		reorder  = fs.Float64("reorder", 0, "per-message link reorder probability")
		mailbox  = fs.Int("mailbox", 0, "per-node mailbox capacity (0 = default)")
		weighted = fs.Bool("weighted", false, "weighted acting-root election (priority, degree, id)")
		pins     = fs.String("pins", "", "operator election pins, e.g. 5=10,7=3 (implies -weighted)")
		smoke    = fs.Bool("smoke", false, "run the CI self-test and exit")
		converge = fs.Duration("converge-timeout", 60*time.Second, "smoke: per-phase convergence bound")
		workers  = fs.Int("workers", 0, "execution engine: 0 = actor runtime (default); N>=1 = sharded parallel stepper with N workers (-drop/-reorder/-mailbox do not apply)")
		waves    = fs.Bool("frontier-waves", false, "parallel stepper: batched concurrent wave execution of the boundary pass")
		reshIm   = fs.Float64("reshard-imbalance", 0, "parallel stepper: arm work-driven resharding at this max/mean per-shard work ratio (<=1 = off)")
		reshIv   = fs.Int64("reshard-interval", 0, "parallel stepper: minimum steps between automatic reshards (0 = policy default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pinMap, err := parsePins(*pins)
	if err != nil {
		return err
	}
	cfg := orientd.Config{
		GraphSpec: *spec,
		Stack:     *stack,
		Root:      graph.NodeID(*root),
		Listen:    *listen,
		Seed:      *seed,
		Weighted:  *weighted,
		Pins:      pinMap,
		Actor: actor.Config{
			Drop:    *drop,
			Reorder: *reorder,
			Mailbox: *mailbox,
		},
		Workers:            *workers,
		FrontierWaves:      *waves,
		ReshardImbalance:   *reshIm,
		ReshardMinInterval: *reshIv,
	}

	if *smoke {
		return orientd.Smoke(orientd.SmokeConfig{
			Config:   cfg,
			Converge: *converge,
			Log:      os.Stdout,
		})
	}

	srv, err := orientd.New(cfg)
	if err != nil {
		return err
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	fmt.Printf("orientd: serving %s on %s %s\n", *spec, srv.Addr().Network(), srv.Addr())
	err = srv.Serve(ctx)
	if err == context.Canceled {
		return nil // signal-driven exit is graceful
	}
	return err
}

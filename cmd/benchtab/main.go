// Command benchtab regenerates the paper-reproduction tables: one per
// figure and complexity claim of the evaluation (see DESIGN.md §5 and
// EXPERIMENTS.md).
//
// Usage:
//
//	benchtab [-exp all|F1,F2,...] [-seed N] [-quick] [-csv] [-json]
//	         [-regress FILE] [-tolerance X]
//
// With -json the selected tables are written as a JSON array of
// {title, headers, rows} objects — the format of the committed
// BENCH_*.json baselines, e.g.:
//
//	benchtab -exp T11,T12 -json > BENCH_scheduler.json
//
// With -regress the produced tables are compared against a committed
// baseline: every speedup cell (a same-process latency ratio, so the
// comparison is hardware-independent) is matched by table title and
// descriptor row key, and the run fails (exit 1) if any cell collapses
// below baseline/tolerance — the CI guard against step-latency
// regressions. Rows or tables absent from either side are skipped, so
// a -quick run checks against a full baseline; comparing zero cells is
// itself an error, so silent key drift cannot green-wash the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netorient/internal/experiments"
	"netorient/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		expList   = fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed      = fs.Int64("seed", 42, "random seed (fixed seed ⇒ identical tables)")
		quick     = fs.Bool("quick", false, "smaller sweeps")
		trials    = fs.Int("trials", 0, "override per-point trials (0 = default)")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut   = fs.Bool("json", false, "emit a JSON array of tables (for BENCH_*.json baselines)")
		regress   = fs.String("regress", "", "baseline BENCH_*.json to compare latency columns against")
		tolerance = fs.Float64("tolerance", 2.0, "fail when a speedup cell collapses below baseline/tolerance")
		workers   = fs.Int("workers", 0, "extra worker count for parallel-stepper sweeps (0 = default sweep)")
		waves     = fs.Bool("frontier-waves", false, "batched wave execution of the parallel stepper's boundary pass (T16; T17 sweeps it)")
		reshardIm = fs.Float64("reshard-imbalance", 0, "arm work-driven resharding at this max/mean per-shard work ratio (≤1 = off)")
		reshardIv = fs.Int64("reshard-interval", 0, "minimum steps between automatic reshards (0 = policy default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Seed: *seed, Quick: *quick, Trials: *trials, Workers: *workers,
		FrontierWaves: *waves, ReshardImbalance: *reshardIm, ReshardMinInterval: *reshardIv,
	}

	var selected []experiments.Experiment
	if *expList == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: F1..F3, T1..T17)", id)
			}
			selected = append(selected, e)
		}
	}

	var baseline []jsonTable
	if *regress != "" {
		data, err := os.ReadFile(*regress)
		if err != nil {
			return fmt.Errorf("regress baseline: %w", err)
		}
		if err := json.Unmarshal(data, &baseline); err != nil {
			return fmt.Errorf("regress baseline %s: %w", *regress, err)
		}
	}

	var tables []*trace.Table
	if *jsonOut {
		fmt.Println("[")
	}
	for i, e := range selected {
		tb, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		tables = append(tables, tb)
		switch {
		case *jsonOut:
			if i > 0 {
				fmt.Println(",")
			}
			if err := tb.RenderJSON(os.Stdout); err != nil {
				return err
			}
		case *csv:
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s: %s ==\n", e.ID, e.Artefact)
			if err := tb.RenderCSV(os.Stdout); err != nil {
				return err
			}
		default:
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s: %s ==\n", e.ID, e.Artefact)
			if err := tb.Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	if *jsonOut {
		fmt.Println("]")
	}

	if *regress != "" {
		return checkRegression(tables, baseline, *tolerance)
	}
	return nil
}

// jsonTable mirrors trace.Table's RenderJSON schema.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// descriptorCols returns how many leading columns describe the row
// rather than measure it: everything before the "steps" column (the
// first run parameter), or before the first measured column for
// tables without one. Measured values — including convergence step
// counts, which shift whenever a protocol change alters the
// trajectory — must stay out of the key, or changed rows silently
// stop matching the baseline.
func descriptorCols(headers []string) int {
	for i, h := range headers {
		if h == "steps" || h == "events" || strings.Contains(h, "ns/step") ||
			strings.Contains(h, "evals") || strings.Contains(h, "scans") ||
			strings.Contains(h, "speedup") {
			return i
		}
	}
	return len(headers)
}

// rowKey identifies a row within a table for baseline matching by its
// descriptor prefix (phase, graph name, n, …).
func rowKey(row []string, descriptors int) string {
	n := descriptors
	if n > len(row) {
		n = len(row)
	}
	return strings.Join(row[:n], "/")
}

// checkRegression compares every "speedup" cell of the produced
// tables against the baseline and errors when one collapses below
// baseline/tolerance. Speedups are same-process ratios (incremental
// vs full scan, witness vs Legitimate() scan), so the comparison is
// hardware-independent — a CI runner slower than the machine that
// produced the baseline shifts both sides of each ratio equally,
// while a reintroduced O(n) scan collapses it.
func checkRegression(tables []*trace.Table, baseline []jsonTable, tolerance float64) error {
	byTitle := make(map[string]jsonTable, len(baseline))
	for _, b := range baseline {
		byTitle[b.Title] = b
	}
	checked, failures := 0, 0
	for _, tb := range tables {
		var got jsonTable
		var buf strings.Builder
		if err := tb.RenderJSON(&buf); err != nil {
			return err
		}
		if err := json.Unmarshal([]byte(buf.String()), &got); err != nil {
			return err
		}
		base, ok := byTitle[got.Title]
		if !ok {
			continue // table not in the baseline yet
		}
		desc := descriptorCols(base.Headers)
		baseRows := make(map[string][]string, len(base.Rows))
		for _, r := range base.Rows {
			baseRows[rowKey(r, desc)] = r
		}
		for _, row := range got.Rows {
			key := rowKey(row, descriptorCols(got.Headers))
			bRow, ok := baseRows[key]
			if !ok {
				continue // row not measured in the baseline (e.g. a new sweep point)
			}
			for col, h := range got.Headers {
				if !strings.Contains(h, "speedup") || col >= len(row) {
					continue
				}
				bCol := -1
				for j, bh := range base.Headers {
					if bh == h {
						bCol = j
						break
					}
				}
				if bCol < 0 || bCol >= len(bRow) {
					continue
				}
				now, err1 := strconv.ParseFloat(row[col], 64)
				was, err2 := strconv.ParseFloat(bRow[bCol], 64)
				if err1 != nil || err2 != nil || was <= 0 {
					continue
				}
				checked++
				if now < was/tolerance {
					failures++
					fmt.Fprintf(os.Stderr, "benchtab: REGRESSION %q / %s / %s: speedup %.2fx vs baseline %.2fx (collapsed %.2fx > %.2fx tolerance)\n",
						got.Title, key, h, now, was, was/now, tolerance)
				}
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d speedup cells collapsed beyond %.2fx", failures, checked, tolerance)
	}
	if checked == 0 {
		return fmt.Errorf("regression check compared no cells — baseline rows no longer match (regenerate the baseline or fix the row keys)")
	}
	fmt.Fprintf(os.Stderr, "benchtab: regression check passed (%d speedup cells within %.2fx of baseline)\n", checked, tolerance)
	return nil
}

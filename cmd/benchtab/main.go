// Command benchtab regenerates the paper-reproduction tables: one per
// figure and complexity claim of the evaluation (see DESIGN.md §5 and
// EXPERIMENTS.md).
//
// Usage:
//
//	benchtab [-exp all|F1,F2,...] [-seed N] [-quick] [-csv] [-json]
//
// With -json the selected tables are written as a JSON array of
// {title, headers, rows} objects — the format of the committed
// BENCH_*.json baselines, e.g.:
//
//	benchtab -exp T11 -json > BENCH_scheduler.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"netorient/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	var (
		expList = fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
		seed    = fs.Int64("seed", 42, "random seed (fixed seed ⇒ identical tables)")
		quick   = fs.Bool("quick", false, "smaller sweeps")
		trials  = fs.Int("trials", 0, "override per-point trials (0 = default)")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut = fs.Bool("json", false, "emit a JSON array of tables (for BENCH_*.json baselines)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Trials: *trials}

	var selected []experiments.Experiment
	if *expList == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: F1..F3, T1..T11)", id)
			}
			selected = append(selected, e)
		}
	}

	if *jsonOut {
		fmt.Println("[")
		for i, e := range selected {
			if i > 0 {
				fmt.Println(",")
			}
			tb, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			if err := tb.RenderJSON(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Println("]")
		return nil
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s: %s ==\n", e.ID, e.Artefact)
		tb, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			if err := tb.RenderCSV(os.Stdout); err != nil {
				return err
			}
		} else if err := tb.Render(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

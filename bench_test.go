package netorient_test

import (
	"math/rand"
	"testing"

	"netorient/internal/core"
	"netorient/internal/daemon"
	"netorient/internal/experiments"
	"netorient/internal/graph"
	"netorient/internal/program"
	"netorient/internal/spantree"
	"netorient/internal/token"
)

// benchCfg is the configuration the experiment benches run under;
// quick mode keeps -bench runs short while exercising every code
// path of the harness. cmd/benchtab regenerates the full tables.
func benchCfg(seed int64) experiments.Config {
	return experiments.Config{Seed: seed, Quick: true}
}

// runExperiment drives one experiment once per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := e.Run(benchCfg(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if tb.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

// One benchmark per paper artefact (DESIGN.md §5).

// BenchmarkF1Chordal regenerates Figure 2.2.1 (chordal SoD example).
func BenchmarkF1Chordal(b *testing.B) { runExperiment(b, "F1") }

// BenchmarkF2DFTNOTrace regenerates Figure 3.1.1 (DFTNO labeling trace).
func BenchmarkF2DFTNOTrace(b *testing.B) { runExperiment(b, "F2") }

// BenchmarkF3STNOTrace regenerates Figure 4.1.1 (STNO weights/naming).
func BenchmarkF3STNOTrace(b *testing.B) { runExperiment(b, "F3") }

// BenchmarkT1DFTNOScaling regenerates the §3.2.3 O(n) claim.
func BenchmarkT1DFTNOScaling(b *testing.B) { runExperiment(b, "T1") }

// BenchmarkT2STNOHeight regenerates the §4.2.3 O(h) claim.
func BenchmarkT2STNOHeight(b *testing.B) { runExperiment(b, "T2") }

// BenchmarkT3Space regenerates the space-accounting comparison.
func BenchmarkT3Space(b *testing.B) { runExperiment(b, "T3") }

// BenchmarkT4Recovery regenerates the fault-recovery table.
func BenchmarkT4Recovery(b *testing.B) { runExperiment(b, "T4") }

// BenchmarkT5SoDBenefit regenerates the message-complexity table.
func BenchmarkT5SoDBenefit(b *testing.B) { runExperiment(b, "T5") }

// BenchmarkT6Equivalence regenerates the DFS-tree/DFTNO naming check.
func BenchmarkT6Equivalence(b *testing.B) { runExperiment(b, "T6") }

// BenchmarkT7Daemons regenerates the daemon ablation.
func BenchmarkT7Daemons(b *testing.B) { runExperiment(b, "T7") }

// BenchmarkT8Orderings regenerates the ψ-ordering ablation.
func BenchmarkT8Orderings(b *testing.B) { runExperiment(b, "T8") }

// BenchmarkT9Election regenerates the election comparison.
func BenchmarkT9Election(b *testing.B) { runExperiment(b, "T9") }

// BenchmarkT10Routing regenerates the greedy-routing stretch table.
func BenchmarkT10Routing(b *testing.B) { runExperiment(b, "T10") }

// BenchmarkT11Scheduler regenerates the incremental-vs-full-scan
// scheduler comparison (BENCH_scheduler.json holds the committed
// baseline from a full benchtab run).
func BenchmarkT11Scheduler(b *testing.B) { runExperiment(b, "T11") }

// BenchmarkT12Witness regenerates the witness-vs-scan legitimacy
// comparison (also committed in BENCH_scheduler.json).
func BenchmarkT12Witness(b *testing.B) { runExperiment(b, "T12") }

// BenchmarkT13Churn regenerates the dynamic-topology comparison —
// localized ApplyDelta invalidation vs whole-system Invalidate and
// churn-rate recovery (also committed in BENCH_scheduler.json).
func BenchmarkT13Churn(b *testing.B) { runExperiment(b, "T13") }

// Micro-benchmarks of the moving parts, with shape metrics reported
// per operation.

// BenchmarkTokenRound measures one full circulation round of the
// self-stabilizing token layer on a 64-ring.
func BenchmarkTokenRound(b *testing.B) {
	g := graph.Ring(64)
	c, err := token.NewCirculator(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	sys := program.NewSystem(c, daemon.NewDeterministic())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := c.Round() + 1
		for c.Round() < target || !c.Done(0) {
			if _, err := sys.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(sys.Moves())/float64(b.N), "moves/round")
}

// BenchmarkDFTNOStabilizeFromRandom measures full-stack stabilization
// on a 4x4 grid from arbitrary configurations.
func BenchmarkDFTNOStabilizeFromRandom(b *testing.B) {
	g := graph.Grid(4, 4)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var total int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Randomize(rng)
		sys := program.NewSystem(d, daemon.NewCentral(int64(i)))
		res, err := sys.RunUntilLegitimate(1 << 24)
		if err != nil || !res.Converged {
			b.Fatalf("no convergence: %v", err)
		}
		total += res.Moves
	}
	b.ReportMetric(float64(total)/float64(b.N), "moves/stabilization")
}

// BenchmarkSTNOStabilizeFromRandom is the STNO counterpart.
func BenchmarkSTNOStabilizeFromRandom(b *testing.B) {
	g := graph.Grid(4, 4)
	sub, err := spantree.NewBFSTree(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.NewSTNO(g, sub, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var total int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Randomize(rng)
		sys := program.NewSystem(s, daemon.NewCentral(int64(i)))
		res, err := sys.RunUntilLegitimate(1 << 24)
		if err != nil || !res.Converged {
			b.Fatalf("no convergence: %v", err)
		}
		total += res.Moves
	}
	b.ReportMetric(float64(total)/float64(b.N), "moves/stabilization")
}

// newGridDFTNO builds the full DFTNO stack on an r×c grid.
func newGridDFTNO(b *testing.B, r, c int) *core.DFTNO {
	b.Helper()
	g := graph.Grid(r, c)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// benchSteps drives b.N daemon steps of sys mid-stabilization,
// re-randomizing (outside the timer) in the unlikely event the
// configuration goes terminal.
func benchSteps(b *testing.B, sys *program.System, d *core.DFTNO, rng *rand.Rand) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := sys.Step()
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.StopTimer()
			d.Randomize(rng)
			sys.Invalidate()
			b.StartTimer()
		}
	}
}

// BenchmarkStepIncremental measures one daemon step of the default
// event-driven scheduler on a 64×64 grid (n=4096) mid-stabilization:
// guard work is confined to the dirty set of the last move and the
// enabled set is maintained as a Fenwick index (O(log n) per
// enabledness flip, no candidate-slice rebuild), so the per-step cost
// is O(Δ·log n) and steady-state stepping allocates nothing.
func BenchmarkStepIncremental(b *testing.B) {
	d := newGridDFTNO(b, 64, 64)
	rng := rand.New(rand.NewSource(3))
	d.Randomize(rng)
	sys := program.NewSystem(d, daemon.NewCentral(7))
	if _, err := sys.Step(); err != nil { // pay the bootstrap scan once
		b.Fatal(err)
	}
	benchSteps(b, sys, d, rng)
}

// BenchmarkStepFullScan is the same workload under the legacy oracle,
// which re-evaluates all 4096 nodes' guards every step — the ≥5×
// (in practice orders-of-magnitude) comparison point recorded in
// CHANGES.md.
func BenchmarkStepFullScan(b *testing.B) {
	d := newGridDFTNO(b, 64, 64)
	rng := rand.New(rand.NewSource(3))
	d.Randomize(rng)
	sys := program.NewSystemFullScan(d, daemon.NewCentral(7))
	if _, err := sys.Step(); err != nil {
		b.Fatal(err)
	}
	benchSteps(b, sys, d, rng)
}

// BenchmarkStepIncrementalSteadyState measures the pure steady state:
// the stabilized token circulation on a 64-ring steps forever with
// exactly one enabled processor, and the incremental scheduler must
// not allocate at all.
func BenchmarkStepIncrementalSteadyState(b *testing.B) {
	g := graph.Ring(64)
	c, err := token.NewCirculator(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	sys := program.NewSystem(c, daemon.NewDeterministic())
	if _, err := sys.Step(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDFTNOStabilizeFromRandomFullScan is the 4×4 stabilization
// workload above under the legacy full-scan oracle, for an in-repo
// end-to-end before/after (the grid is small enough that the oracle
// finishes; on the 64×64 grid it would take hours).
func BenchmarkDFTNOStabilizeFromRandomFullScan(b *testing.B) {
	d := newGridDFTNO(b, 4, 4)
	rng := rand.New(rand.NewSource(1))
	var total int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Randomize(rng)
		sys := program.NewSystemFullScan(d, daemon.NewCentral(int64(i)))
		res, err := sys.RunUntilLegitimate(1 << 24)
		if err != nil || !res.Converged {
			b.Fatalf("no convergence: %v", err)
		}
		total += res.Moves
	}
	b.ReportMetric(float64(total)/float64(b.N), "moves/stabilization")
}

// BenchmarkDFTNOStabilizeLarge runs the full stack to legitimacy from
// an arbitrary configuration on a 64×64 grid (n=4096, m=8064) — the
// scale the incremental scheduler exists for. Skipped under -short.
func BenchmarkDFTNOStabilizeLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("large-graph stabilization skipped in short mode")
	}
	d := newGridDFTNO(b, 64, 64)
	rng := rand.New(rand.NewSource(1))
	var total int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Randomize(rng)
		sys := program.NewSystem(d, daemon.NewCentral(int64(i)))
		res, err := sys.RunUntilLegitimate(1 << 40)
		if err != nil || !res.Converged {
			b.Fatalf("no convergence: %v", err)
		}
		total += res.Moves
	}
	b.ReportMetric(float64(total)/float64(b.N), "moves/stabilization")
}

// benchFrontierHeavyStep drives the sharded parallel stepper on the
// frontier-heavy regime where the phase-B seam cost is worst: the BFS
// spanning tree on a BFS-relabeled Barabási–Albert graph at n = 2¹⁸
// (expander-like, so nearly every node's influence ball crosses a
// shard boundary). Graph and stepper construction stay outside the
// timer; each iteration is one distributed-daemon step, and the
// configuration is re-randomized off the clock if it goes terminal.
// The waves-off/waves-on pair benchmarks the serialized boundary pass
// against batched wave execution; the committed T17 rows in
// BENCH_scheduler.json hold the counted (hardware-independent)
// speedups the regression gate checks.
func benchFrontierHeavyStep(b *testing.B, waves bool) {
	b.Helper()
	base, err := graph.Barabasi(1<<18, 3, rand.New(rand.NewSource(11)))
	if err != nil {
		b.Fatal(err)
	}
	order, err := graph.BFSOrder(base, 0)
	if err != nil {
		b.Fatal(err)
	}
	g, inv, err := base.ReorderNodes(order)
	if err != nil {
		b.Fatal(err)
	}
	p, err := spantree.NewBFSTree(g, inv[0])
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	p.Randomize(rng)
	ps := program.NewParallelSystem(p, program.ParallelConfig{
		Workers: 8, Seed: 11, FrontierWaves: waves,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := ps.Step()
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.StopTimer()
			p.Randomize(rng)
			ps.Invalidate()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(ps.FrontierSize()), "frontier")
	b.ReportMetric(float64(ps.BoundarySpanUnits())/float64(b.N), "seamspan/step")
}

// BenchmarkParallelStepFrontierHeavy measures the serialized phase-B
// boundary pass on the fat-frontier barabási workload.
func BenchmarkParallelStepFrontierHeavy(b *testing.B) { benchFrontierHeavyStep(b, false) }

// BenchmarkParallelStepFrontierWaves is the same workload with batched
// wave execution of phase B (distance-2R coloring of the frontier).
// Compare the seamspan/step metric, not ns/op: the counted seam span
// is what an ideal W-core machine executes serially, while wall-clock
// per step also pays the per-wave goroutine dispatch, which dominates
// on an oversubscribed CI box.
func BenchmarkParallelStepFrontierWaves(b *testing.B) { benchFrontierHeavyStep(b, true) }

// BenchmarkEnabledScan measures guard evaluation over a whole
// configuration — the simulator's hot path.
func BenchmarkEnabledScan(b *testing.B) {
	g := graph.Grid(8, 8)
	sub, err := token.NewCirculator(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	d, err := core.NewDFTNO(g, sub, 0)
	if err != nil {
		b.Fatal(err)
	}
	var buf []program.ActionID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			buf = d.Enabled(graph.NodeID(v), buf[:0])
		}
	}
}

// BenchmarkSnapshot measures configuration capture, the model
// checker's hot path.
func BenchmarkSnapshot(b *testing.B) {
	g := graph.Grid(8, 8)
	c, err := token.NewCirculator(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(c.Snapshot()) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}
